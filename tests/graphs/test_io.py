"""Round-trip tests for graph serialization."""

import numpy as np
import pytest

from repro.graphs.generators import gnp_average_degree
from repro.graphs.graph import WeightedGraph
from repro.graphs.io import load_edgelist, load_npz, save_edgelist, save_npz
from repro.graphs.weights import uniform_weights


@pytest.fixture
def sample():
    g = gnp_average_degree(50, 6.0, seed=10)
    return g.with_weights(uniform_weights(g.n, 0.5, 123.25, seed=11))


class TestNpz:
    def test_roundtrip(self, sample, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(sample, path)
        loaded = load_npz(path)
        assert loaded == sample

    def test_roundtrip_empty(self, tmp_path):
        g = WeightedGraph.empty(4)
        path = tmp_path / "e.npz"
        save_npz(g, path)
        assert load_npz(path) == g

    def test_version_checked(self, sample, tmp_path):
        path = tmp_path / "g.npz"
        np.savez_compressed(
            path,
            version=np.int64(999),
            n=np.int64(1),
            edges_u=np.empty(0, np.int64),
            edges_v=np.empty(0, np.int64),
            weights=np.ones(1),
        )
        with pytest.raises(ValueError, match="version"):
            load_npz(path)


class TestEdgelist:
    def test_roundtrip(self, sample, tmp_path):
        path = tmp_path / "g.txt"
        save_edgelist(sample, path)
        loaded = load_edgelist(path)
        assert loaded == sample  # repr() of floats round-trips exactly

    def test_roundtrip_empty(self, tmp_path):
        g = WeightedGraph.empty(3)
        path = tmp_path / "e.txt"
        save_edgelist(g, path)
        assert load_edgelist(path) == g

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("junk\n")
        with pytest.raises(ValueError, match="header"):
            load_edgelist(path)

    def test_bad_size_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# mwvc-edgelist v1\nnope\n")
        with pytest.raises(ValueError, match="size line"):
            load_edgelist(path)

    def test_truncated_edges(self, sample, tmp_path):
        path = tmp_path / "g.txt"
        save_edgelist(sample, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="edge line"):
            load_edgelist(path)

    def test_weight_count_checked(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# mwvc-edgelist v1\nn 3 m 0\nw 1.0 2.0\n")
        with pytest.raises(ValueError, match="weights"):
            load_edgelist(path)


class TestGzipEdgelist:
    def test_gzip_roundtrip(self, sample, tmp_path):
        path = tmp_path / "g.txt.gz"
        save_edgelist(sample, path)
        # Really gzip on disk, not just a renamed text file.
        with open(path, "rb") as fh:
            assert fh.read(2) == b"\x1f\x8b"
        assert load_edgelist(path) == sample

    def test_gzip_roundtrip_empty(self, tmp_path):
        g = WeightedGraph.empty(3)
        path = tmp_path / "e.txt.gz"
        save_edgelist(g, path)
        assert load_edgelist(path) == g

    def test_gzip_smaller_than_plain(self, tmp_path):
        g = gnp_average_degree(600, 10.0, seed=12)
        plain = tmp_path / "g.txt"
        packed = tmp_path / "g.txt.gz"
        save_edgelist(g, plain)
        save_edgelist(g, packed)
        assert packed.stat().st_size < plain.stat().st_size


class TestChunkedLoading:
    def test_small_chunks_match_default(self, sample, tmp_path):
        path = tmp_path / "g.txt"
        save_edgelist(sample, path)
        assert load_edgelist(path, chunk_edges=7) == load_edgelist(path)

    def test_chunk_of_one(self, sample, tmp_path):
        path = tmp_path / "g.txt"
        save_edgelist(sample, path)
        assert load_edgelist(path, chunk_edges=1) == sample

    def test_chunk_exactly_m(self, sample, tmp_path):
        path = tmp_path / "g.txt"
        save_edgelist(sample, path)
        assert load_edgelist(path, chunk_edges=sample.m) == sample

    def test_bad_chunk_size(self, sample, tmp_path):
        path = tmp_path / "g.txt"
        save_edgelist(sample, path)
        with pytest.raises(ValueError, match="chunk_edges"):
            load_edgelist(path, chunk_edges=0)

    def test_truncated_gzip_edges(self, sample, tmp_path):
        import gzip

        path = tmp_path / "g.txt.gz"
        save_edgelist(sample, path)
        with gzip.open(path, "rt", encoding="ascii") as fh:
            lines = fh.read().splitlines()
        with gzip.open(path, "wt", encoding="ascii") as fh:
            fh.write("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="edge line"):
            load_edgelist(path)


class TestAtomicWrites:
    def test_write_bytes_atomic_creates_and_replaces(self, tmp_path):
        from repro.graphs.io import write_bytes_atomic

        path = tmp_path / "blob.bin"
        write_bytes_atomic(path, b"first")
        assert path.read_bytes() == b"first"
        write_bytes_atomic(path, b"second", fsync=False)
        assert path.read_bytes() == b"second"
        # No temp litter either way.
        assert [p.name for p in tmp_path.iterdir()] == ["blob.bin"]

    def test_failed_write_preserves_existing_file(self, tmp_path, monkeypatch):
        import os

        from repro.graphs import io as gio

        path = tmp_path / "blob.bin"
        gio.write_bytes_atomic(path, b"keep me")

        def exploding_replace(src, dst):
            raise OSError("disk went away")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="disk went away"):
            gio.write_bytes_atomic(path, b"never lands")
        monkeypatch.undo()
        assert path.read_bytes() == b"keep me"
        assert [p.name for p in tmp_path.iterdir()] == ["blob.bin"]

    def test_save_npz_is_atomic_against_existing(self, sample, tmp_path):
        # Overwriting with the same graph must go through the tmp+rename
        # path and leave a loadable file.
        path = tmp_path / "g.npz"
        save_npz(sample, path)
        save_npz(sample, path)
        assert load_npz(path) == sample
        assert [p.name for p in tmp_path.iterdir()] == ["g.npz"]
