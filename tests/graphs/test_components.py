"""Tests for connected-component utilities."""

import numpy as np
import pytest

from repro.graphs.components import component_labels, largest_component, split_components
from repro.graphs.generators import complete_graph, disjoint_edges, gnp_average_degree
from repro.graphs.graph import WeightedGraph


class TestComponentLabels:
    def test_single_component(self):
        count, labels = component_labels(complete_graph(5))
        assert count == 1
        assert (labels == labels[0]).all()

    def test_matching_components(self):
        count, labels = component_labels(disjoint_edges(4))
        assert count == 4
        for e in range(4):
            assert labels[2 * e] == labels[2 * e + 1]

    def test_isolated_singletons(self):
        g = WeightedGraph.from_edge_list(5, [(0, 1)])
        count, labels = component_labels(g)
        assert count == 4  # {0,1}, {2}, {3}, {4}
        assert labels[0] == labels[1]

    def test_empty(self):
        count, labels = component_labels(WeightedGraph.empty(0))
        assert count == 0 and labels.size == 0

    def test_edgeless(self):
        count, labels = component_labels(WeightedGraph.empty(4))
        assert count == 4
        assert sorted(labels.tolist()) == [0, 1, 2, 3]


class TestSplitComponents:
    def test_sizes_descending(self):
        g = WeightedGraph.from_edge_list(9, [(0, 1), (1, 2), (2, 3), (5, 6), (7, 8)])
        parts = split_components(g)
        sizes = [sub.n for sub, _, _ in parts]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[0] == 4

    def test_isolated_skipped_by_default(self):
        g = WeightedGraph.from_edge_list(4, [(0, 1)])
        parts = split_components(g)
        assert len(parts) == 1
        parts_all = split_components(g, skip_isolated=False)
        assert len(parts_all) == 3

    def test_edges_partitioned(self):
        g = gnp_average_degree(120, 1.5, seed=3)  # subcritical: many comps
        parts = split_components(g)
        total_edges = sum(sub.m for sub, _, _ in parts)
        assert total_edges == g.m

    def test_mapping_correct(self):
        g = WeightedGraph.from_edge_list(6, [(0, 3), (1, 4)], weights=np.arange(1.0, 7.0))
        for sub, vids, eids in split_components(g):
            assert np.allclose(sub.weights, g.weights[vids])
            for j in range(sub.m):
                assert g.edges_u[eids[j]] == vids[sub.edges_u[j]]


class TestLargestComponent:
    def test_picks_largest(self):
        g = WeightedGraph.from_edge_list(7, [(0, 1), (2, 3), (3, 4), (4, 5)])
        sub, vids, _ = largest_component(g)
        assert sub.n == 4
        assert set(vids.tolist()) == {2, 3, 4, 5}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            largest_component(WeightedGraph.empty(0))
