"""Unit tests for the WeightedGraph substrate."""

import numpy as np
import pytest

from repro.graphs.graph import WeightedGraph, canonical_edges


class TestCanonicalEdges:
    def test_orients_and_sorts(self):
        # pairs (3,1), (0,2), (2,0) -> canonical {(0,2), (1,3)} with the
        # duplicate (0,2) merged.
        u, v = canonical_edges(np.array([3, 0, 2]), np.array([1, 2, 0]), n=4)
        assert u.tolist() == [0, 1]
        assert v.tolist() == [2, 3]

    def test_merges_duplicates(self):
        u, v = canonical_edges(np.array([0, 2, 1]), np.array([2, 0, 0]), n=3)
        assert u.tolist() == [0, 0]
        assert v.tolist() == [1, 2]

    def test_duplicates_rejected_when_disallowed(self):
        with pytest.raises(ValueError, match="duplicate"):
            canonical_edges(np.array([0, 1]), np.array([1, 0]), n=2, allow_duplicates=False)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            canonical_edges(np.array([1]), np.array([1]), n=3)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="endpoints"):
            canonical_edges(np.array([0]), np.array([5]), n=3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="endpoints"):
            canonical_edges(np.array([-1]), np.array([1]), n=3)

    def test_empty_ok(self):
        u, v = canonical_edges(np.empty(0, np.int64), np.empty(0, np.int64), n=0)
        assert u.size == 0 and v.size == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            canonical_edges(np.array([0, 1]), np.array([1]), n=3)


class TestConstruction:
    def test_basic(self, triangle):
        assert triangle.n == 3
        assert triangle.m == 3
        assert triangle.max_degree == 2
        assert triangle.average_degree == 2.0

    def test_default_weights_are_ones(self, triangle):
        assert np.array_equal(triangle.weights, np.ones(3))

    def test_weights_length_checked(self):
        with pytest.raises(ValueError, match="weights"):
            WeightedGraph(3, [0], [1], weights=[1.0, 2.0])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            WeightedGraph(2, [0], [1], weights=[1.0, 0.0])

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            WeightedGraph(-1, [], [])

    def test_empty_graph(self):
        g = WeightedGraph.empty(5)
        assert g.n == 5 and g.m == 0
        assert g.average_degree == 0.0
        assert g.max_degree == 0

    def test_zero_vertex_graph(self):
        g = WeightedGraph.empty(0)
        assert g.n == 0 and g.m == 0
        assert g.average_degree == 0.0

    def test_from_edge_list(self):
        g = WeightedGraph.from_edge_list(4, [(3, 0), (1, 2)])
        assert g.m == 2
        assert g.edges_u.tolist() == [0, 1]
        assert g.edges_v.tolist() == [3, 2]

    def test_edge_arrays_read_only(self, triangle):
        with pytest.raises(ValueError):
            triangle.edges_u[0] = 99
        with pytest.raises(ValueError):
            triangle.weights[0] = 99.0

    def test_equality_and_hash(self, triangle):
        other = WeightedGraph.from_edge_list(3, [(2, 1), (0, 2), (0, 1)])
        assert triangle == other
        assert hash(triangle) == hash(other)
        different = WeightedGraph.from_edge_list(3, [(0, 1), (1, 2)])
        assert triangle != different

    def test_total_weight(self, weighted_star):
        assert weighted_star.total_weight == pytest.approx(15.0)


class TestDegrees:
    def test_star_degrees(self):
        from repro.graphs.generators import star

        g = star(5)
        assert g.degrees.tolist() == [4, 1, 1, 1, 1]
        assert g.max_degree == 4
        assert g.average_degree == pytest.approx(8 / 5)

    def test_degrees_match_csr(self, small_random):
        assert np.array_equal(np.diff(small_random.indptr), small_random.degrees)


class TestIncidentSums:
    def test_uniform_values(self, triangle):
        sums = triangle.incident_sums(np.ones(3))
        assert sums.tolist() == [2.0, 2.0, 2.0]

    def test_specific_values(self, path4):
        # edges: (0,1), (1,2), (2,3)
        sums = path4.incident_sums(np.array([1.0, 10.0, 100.0]))
        assert sums.tolist() == [1.0, 11.0, 110.0, 100.0]

    def test_shape_checked(self, triangle):
        with pytest.raises(ValueError, match="shape"):
            triangle.incident_sums(np.ones(5))

    def test_empty_graph(self):
        g = WeightedGraph.empty(3)
        assert g.incident_sums(np.empty(0)).tolist() == [0.0, 0.0, 0.0]

    def test_matches_bruteforce(self, small_random):
        x = np.random.default_rng(0).random(small_random.m)
        expected = np.zeros(small_random.n)
        for e in range(small_random.m):
            expected[small_random.edges_u[e]] += x[e]
            expected[small_random.edges_v[e]] += x[e]
        assert np.allclose(small_random.incident_sums(x), expected)


class TestIncidentCounts:
    def test_full_mask_equals_degrees(self, small_random):
        mask = np.ones(small_random.m, dtype=bool)
        assert np.array_equal(small_random.incident_counts(mask), small_random.degrees)

    def test_empty_mask(self, small_random):
        mask = np.zeros(small_random.m, dtype=bool)
        assert small_random.incident_counts(mask).sum() == 0

    def test_partial(self, path4):
        mask = np.array([True, False, True])
        assert path4.incident_counts(mask).tolist() == [1, 1, 1, 1]

    def test_shape_checked(self, path4):
        with pytest.raises(ValueError, match="shape"):
            path4.incident_counts(np.ones(2, dtype=bool))


class TestEndpointValues:
    def test_gather(self, path4):
        vals = np.array([10.0, 20.0, 30.0, 40.0])
        a, b = path4.endpoint_values(vals)
        assert a.tolist() == [10.0, 20.0, 30.0]
        assert b.tolist() == [20.0, 30.0, 40.0]

    def test_length_checked(self, path4):
        with pytest.raises(ValueError, match="length"):
            path4.endpoint_values(np.ones(3))


class TestCoverOps:
    def test_valid_cover(self, triangle):
        assert triangle.is_vertex_cover(np.array([True, True, False]))

    def test_invalid_cover(self, triangle):
        assert not triangle.is_vertex_cover(np.array([True, False, False]))

    def test_empty_graph_any_cover(self):
        g = WeightedGraph.empty(3)
        assert g.is_vertex_cover(np.zeros(3, dtype=bool))

    def test_cover_weight(self, weighted_star):
        mask = np.array([False, True, True, True, True, True])
        assert weighted_star.cover_weight(mask) == pytest.approx(5.0)

    def test_uncovered_edges(self, path4):
        mask = np.array([False, True, False, False])
        assert path4.uncovered_edges(mask).tolist() == [2]  # edge (2,3)

    def test_shape_checked(self, triangle):
        with pytest.raises(ValueError, match="shape"):
            triangle.is_vertex_cover(np.ones(5, dtype=bool))


class TestCSR:
    def test_neighbors_sorted_union(self, triangle):
        assert sorted(triangle.neighbors(0).tolist()) == [1, 2]
        assert sorted(triangle.neighbors(1).tolist()) == [0, 2]

    def test_incident_edge_ids(self, path4):
        assert sorted(path4.incident_edge_ids(1).tolist()) == [0, 1]

    def test_out_of_range(self, triangle):
        with pytest.raises(IndexError):
            triangle.neighbors(10)
        with pytest.raises(IndexError):
            triangle.incident_edge_ids(-1)

    def test_adjacency_consistency(self, small_random):
        g = small_random
        for v in range(g.n):
            for w, e in zip(g.neighbors(v), g.incident_edge_ids(v)):
                a, b = g.edges_u[e], g.edges_v[e]
                assert {a, b} == {v, w}


class TestInducedSubgraph:
    def test_by_mask(self, path4):
        sub, vids, eids = path4.induced_subgraph(np.array([True, True, True, False]))
        assert sub.n == 3 and sub.m == 2
        assert vids.tolist() == [0, 1, 2]
        assert eids.tolist() == [0, 1]

    def test_by_ids(self, path4):
        sub, vids, eids = path4.induced_subgraph(np.array([1, 2]))
        assert sub.n == 2 and sub.m == 1
        assert vids.tolist() == [1, 2]
        assert eids.tolist() == [1]

    def test_weights_carried(self, weighted_star):
        sub, vids, _ = weighted_star.induced_subgraph(np.array([0, 1]))
        assert sub.weights.tolist() == [10.0, 1.0]

    def test_no_edges(self, path4):
        sub, _, eids = path4.induced_subgraph(np.array([0, 2]))
        assert sub.m == 0 and eids.size == 0

    def test_ids_out_of_range(self, path4):
        with pytest.raises(ValueError):
            path4.induced_subgraph(np.array([0, 9]))

    def test_relabeling_preserves_structure(self, small_random):
        g = small_random
        ids = np.arange(0, g.n, 2)
        sub, vids, eids = g.induced_subgraph(ids)
        for j in range(sub.m):
            pu = vids[sub.edges_u[j]]
            pv = vids[sub.edges_v[j]]
            assert pu == g.edges_u[eids[j]]
            assert pv == g.edges_v[eids[j]]

    def test_full_subgraph_identity(self, small_random):
        sub, vids, eids = small_random.induced_subgraph(np.ones(small_random.n, dtype=bool))
        assert sub == small_random


class TestEdgeSubgraph:
    def test_mask_keeps_vertices(self, path4):
        sub = path4.edge_subgraph(np.array([True, False, True]))
        assert sub.n == 4 and sub.m == 2

    def test_shape_checked(self, path4):
        with pytest.raises(ValueError, match="shape"):
            path4.edge_subgraph(np.ones(5, dtype=bool))


class TestWithWeights:
    def test_replaces_weights_only(self, triangle):
        g2 = triangle.with_weights(np.array([5.0, 6.0, 7.0]))
        assert g2.weights.tolist() == [5.0, 6.0, 7.0]
        assert np.array_equal(g2.edges_u, triangle.edges_u)

    def test_edge_list_roundtrip(self, small_random):
        el = small_random.edge_list()
        g2 = WeightedGraph(small_random.n, el[:, 0], el[:, 1], small_random.weights)
        assert g2 == small_random
