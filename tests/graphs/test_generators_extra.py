"""Tests for the extended graph families."""

import numpy as np
import pytest

from repro.graphs.checks import validate_graph
from repro.graphs.components import component_labels
from repro.graphs.generators_extra import (
    hypercube,
    preferential_attachment,
    random_geometric,
    stochastic_block_model,
)


class TestSBM:
    def test_valid_and_sized(self):
        g = stochastic_block_model([50, 50, 50], p_in=0.2, p_out=0.01, seed=1)
        validate_graph(g)
        assert g.n == 150

    def test_community_structure(self):
        g = stochastic_block_model([80, 80], p_in=0.3, p_out=0.005, seed=2)
        labels = np.repeat([0, 1], 80)
        lu, lv = g.endpoint_values(labels)
        internal = (lu == lv).sum()
        assert internal > 0.8 * g.m  # overwhelmingly intra-block

    def test_zero_probabilities(self):
        g = stochastic_block_model([10, 10], p_in=0.0, p_out=0.0, seed=3)
        assert g.m == 0

    def test_deterministic(self):
        a = stochastic_block_model([30, 30], 0.2, 0.02, seed=7)
        b = stochastic_block_model([30, 30], 0.2, 0.02, seed=7)
        assert a == b

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            stochastic_block_model([10], p_in=1.5, p_out=0.0)
        with pytest.raises(ValueError):
            stochastic_block_model([-1], p_in=0.5, p_out=0.0)


class TestGeometric:
    def test_valid(self):
        g = random_geometric(300, 0.1, seed=4)
        validate_graph(g)
        assert g.n == 300

    def test_radius_zero(self):
        assert random_geometric(50, 0.0, seed=5).m == 0

    def test_radius_full(self):
        g = random_geometric(20, 2.0, seed=6)
        assert g.m == 20 * 19 // 2  # unit square diameter < 2

    def test_deterministic(self):
        assert random_geometric(100, 0.15, seed=8) == random_geometric(100, 0.15, seed=8)

    def test_invalid(self):
        with pytest.raises(ValueError):
            random_geometric(-1, 0.1)
        with pytest.raises(ValueError):
            random_geometric(10, -0.1)


class TestHypercube:
    @pytest.mark.parametrize("d", [0, 1, 2, 3, 5])
    def test_structure(self, d):
        g = hypercube(d)
        validate_graph(g)
        assert g.n == 2**d
        assert g.m == d * 2 ** (d - 1) if d else g.m == 0
        if d:
            assert (g.degrees == d).all()

    def test_connected(self):
        count, _ = component_labels(hypercube(4))
        assert count == 1

    def test_bipartite_structure(self):
        g = hypercube(3)
        parity = np.array([bin(v).count("1") % 2 for v in range(8)])
        pu, pv = g.endpoint_values(parity)
        assert (pu != pv).all()  # all edges cross the parity classes

    def test_invalid(self):
        with pytest.raises(ValueError):
            hypercube(-1)


class TestPreferentialAttachment:
    def test_valid_connected(self):
        g = preferential_attachment(500, attachments=3, seed=9)
        validate_graph(g)
        count, _ = component_labels(g)
        assert count == 1

    def test_edge_count(self):
        k = 2
        g = preferential_attachment(100, attachments=k, seed=10)
        assert g.m == k + (100 - k - 1) * k

    def test_heavy_tail(self):
        g = preferential_attachment(3000, attachments=2, seed=11)
        assert g.max_degree > 8 * g.average_degree

    def test_deterministic(self):
        a = preferential_attachment(80, seed=12)
        b = preferential_attachment(80, seed=12)
        assert a == b

    def test_invalid(self):
        with pytest.raises(ValueError):
            preferential_attachment(2, attachments=3)
        with pytest.raises(ValueError):
            preferential_attachment(10, attachments=0)
