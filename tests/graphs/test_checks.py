"""Tests for the independent invariant validator."""

import numpy as np
import pytest

from repro.graphs.checks import GraphInvariantError, validate_graph
from repro.graphs.generators import gnp_average_degree, power_law
from repro.graphs.graph import WeightedGraph


class TestValidateGraph:
    def test_valid_graphs_pass(self, named_graph):
        validate_graph(named_graph)

    def test_random_graphs_pass(self):
        validate_graph(gnp_average_degree(300, 10.0, seed=1))
        validate_graph(power_law(300, seed=2))

    def test_empty_passes(self):
        validate_graph(WeightedGraph.empty(0))
        validate_graph(WeightedGraph.empty(7))

    def test_tampered_weights_detected(self, triangle):
        # Bypass immutability through the private attribute, as a bug would.
        w = np.array([1.0, -1.0, 1.0])
        object.__setattr__
        tampered = WeightedGraph.from_edge_list(3, [(0, 1)])
        tampered._weights = w  # type: ignore[attr-defined]
        with pytest.raises(GraphInvariantError, match="I5"):
            validate_graph(tampered)

    def test_tampered_degrees_detected(self, triangle):
        bad = np.array([9, 9, 9], dtype=np.int64)
        triangle._degrees = bad  # type: ignore[attr-defined]
        with pytest.raises(GraphInvariantError, match="I6"):
            validate_graph(triangle)

    def test_tampered_edges_detected(self, path4):
        eu = path4.edges_u.copy()
        eu.setflags(write=True)
        eu[0] = 3  # breaks u < v
        path4._edges_u = eu  # type: ignore[attr-defined]
        with pytest.raises(GraphInvariantError):
            validate_graph(path4)
