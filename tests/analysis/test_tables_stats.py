"""Tests for table rendering and trial statistics."""

import pytest

from repro.analysis.stats import geometric_mean, summarize
from repro.analysis.tables import format_cell, render_table


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.count == 3

    def test_single_value_zero_std(self):
        s = summarize([5.0])
        assert s.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_format(self):
        assert "±" in f"{summarize([1.0, 2.0]):.2f}"

    def test_as_dict(self):
        assert set(summarize([1.0]).as_dict()) == {"mean", "std", "min", "max", "n"}


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_positive_required(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestFormatCell:
    def test_floats(self):
        assert format_cell(3.14159) == "3.142"
        assert format_cell(1e-7) == "1.000e-07"
        assert format_cell(0.0) == "0"
        assert format_cell(float("nan")) == "nan"
        assert format_cell(float("inf")) == "inf"

    def test_bools_and_ints(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"
        assert format_cell(42) == "42"


class TestRenderTable:
    def test_structure(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}]
        out = render_table(rows, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5  # title + header + sep + 2 rows

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        out = render_table(rows, columns=["b"])
        assert "a" not in out.splitlines()[0]

    def test_empty(self):
        assert "(empty)" in render_table([], title="x")

    def test_missing_keys_blank(self):
        out = render_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert out  # renders without raising
