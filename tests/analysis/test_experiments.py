"""Smoke + shape tests for the experiment runners (small configurations;
the full configurations run in benchmarks/)."""

import pytest

from repro.analysis.experiments import (
    experiment_ablations,
    experiment_approximation,
    experiment_centralized_iterations,
    experiment_congested_clique,
    experiment_degree_reduction,
    experiment_deviation,
    experiment_engine_agreement,
    experiment_memory,
    experiment_round_complexity,
    experiment_vs_local_baseline,
    experiment_weighted_vs_unweighted,
    make_workload,
)


class TestWorkloads:
    def test_gnp(self):
        g = make_workload("gnp", 200, 10.0, "uniform", seed=1)
        assert g.n == 200 and (g.weights > 0).all()

    def test_power_law(self):
        g = make_workload("power_law", 200, 8.0, "exponential", seed=2)
        assert g.n == 200

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            make_workload("hypercube", 10, 2.0, "uniform", seed=0)


class TestRunnersProduceRows:
    def test_e1(self):
        rows = experiment_round_complexity(ns=(800,), degrees=(16.0,), trials=1)
        assert rows and rows[0]["phases_mean"] >= 1

    def test_e2(self):
        rows = experiment_approximation(
            eps_values=(0.1,), weight_models=("uniform",), n_small=20, n_medium=300,
            trials=1,
        )
        assert rows and rows[0]["within_bound"]

    def test_e3(self):
        rows = experiment_memory(n=800, degrees=(32.0,), trials=1)
        assert rows and rows[0]["max_machine_edges_over_n"] <= 2.0

    def test_e4(self):
        rows = experiment_degree_reduction(n=800, avg_degree=32.0, families=("gnp",))
        assert rows
        assert all(r["max_out_degree_bound_ratio"] <= 1.0 + 1e-9 for r in rows)

    def test_e5(self):
        rows = experiment_centralized_iterations(
            n=400, degrees=(16.0,), weight_spreads=(9.0,)
        )
        assert rows and rows[0]["iters_uniform"] > rows[0]["iters_degree_scaled"]

    def test_e6(self):
        rows = experiment_deviation(n=600, degrees=(32.0,), trials=1)
        assert rows and rows[0]["max_dev"] >= 0.0

    def test_e7(self):
        rows = experiment_vs_local_baseline(ns=(600,), avg_degree=16.0)
        assert rows and rows[0]["baseline_rounds"] > rows[0]["ours_phases"]

    def test_e8(self):
        rows = experiment_weighted_vs_unweighted(
            n=400, avg_degree=12.0, weight_models=("adversarial",), trials=1
        )
        assert rows and rows[0]["unweighted_over_weighted_mean"] > 0

    def test_e9(self):
        rows = experiment_ablations(n=400, avg_degree=16.0, trials=1)
        assert len(rows) == 4

    def test_e10(self):
        rows = experiment_congested_clique(ns=(200,), avg_degree=8.0)
        assert rows and rows[0]["cc_rounds"] > rows[0]["mpc_rounds"]

    def test_e11(self):
        rows = experiment_engine_agreement(ns=(150,), degrees=(10.0,))
        assert rows
        assert all(r["covers_equal"] and r["rounds_equal"] for r in rows)
