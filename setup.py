"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments lacking the ``wheel``
package (pip falls back to ``setup.py develop`` for legacy editable
installs).
"""

from setuptools import setup

setup()
