"""E4 — Observation 4.3 + Lemma 4.4: per-phase degree reduction.

Claims, per phase:

* (Obs 4.3, deterministic) every vertex surviving the safety freeze has
  active out-degree ≤ ``d(v)·(1-ε)^I`` under the ``w'/d`` orientation;
* (Lemma 4.4, w.h.p.) the edges surviving the phase number at most
  ``2·n·d̄·(1-ε)^I``.

The bench runs traced executions on G(n,p) and power-law inputs and reports
the measured/bound ratios for every phase; both must be ≤ 1.
"""

from benchmarks.conftest import register_table
from repro.analysis.experiments import experiment_degree_reduction

_COLUMNS = [
    "family",
    "phase_index",
    "iterations",
    "num_high",
    "num_edges_high",
    "max_active_out_degree",
    "max_out_degree_bound_ratio",
    "surviving_edges",
    "lemma44_bound",
    "lemma44_ratio",
]


def test_e4_degree_reduction(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_degree_reduction(
            n=4000, avg_degree=64.0, families=("gnp", "power_law"), eps=0.1, seed=4
        ),
        rounds=1,
        iterations=1,
    )
    register_table(
        "E4: orientation progress (Obs 4.3 ratio ≤ 1; Lemma 4.4 ratio ≤ 1)",
        rows,
        columns=_COLUMNS,
    )

    assert rows
    for r in rows:
        assert r["max_out_degree_bound_ratio"] <= 1.0 + 1e-9, f"Obs 4.3 violated: {r}"
        assert r["lemma44_ratio"] <= 1.0, f"Lemma 4.4 violated: {r}"
