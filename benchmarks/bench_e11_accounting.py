"""E11 — cross-engine audit: predicted rounds == measured rounds.

The vectorized engine *predicts* MPC round costs from the accounting model;
the cluster engine *measures* them by exchanging real messages under
capacity enforcement.  The claim this bench certifies: the two agree
exactly (same covers, same duals, same per-phase and total round counts) —
so the fast engine's numbers reported by every other bench are the model's
true costs, and global memory stays within Lemma 4.1's O(|E|).
"""

from benchmarks.conftest import register_table
from repro.analysis.experiments import experiment_engine_agreement


def test_e11_engine_agreement(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_engine_agreement(
            ns=(200, 400), degrees=(12.0, 24.0), eps=0.1, seed=11
        ),
        rounds=1,
        iterations=1,
    )
    register_table("E11: vectorized-predicted vs cluster-measured rounds", rows)

    for r in rows:
        assert r["covers_equal"], f"engine covers diverged: {r}"
        assert r["duals_close"], f"engine duals diverged: {r}"
        assert r["rounds_equal"], f"round prediction mismatch: {r}"
