"""E3 — Lemma 4.1: per-machine induced subgraphs hold O(n) edges.

Claim: with ``m = √d̄`` machines, every machine's induced subgraph has
``|E[V_i]| ≤ 2n`` w.h.p., independent of the degree.  The bench sweeps the
degree at fixed n and reports the worst ``|E[V_i]|/n`` over all machines
and phases; the assertion is the lemma's constant 2.
"""

from benchmarks.conftest import register_table
from repro.analysis.experiments import experiment_memory


def test_e3_memory(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_memory(
            n=4000, degrees=(32.0, 128.0, 512.0), eps=0.1, trials=3, seed=3
        ),
        rounds=1,
        iterations=1,
    )
    register_table("E3: max per-machine induced edges / n (Lemma 4.1 bound = 2)", rows)

    for r in rows:
        assert r["within_bound"], f"Lemma 4.1 violated: {r}"
        assert r["max_machine_edges_over_n"] > 0
