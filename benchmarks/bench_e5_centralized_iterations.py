"""E5 — Proposition 3.4: iteration counts of Algorithm 1 per initialization.

Claims:

* degree-scaled init terminates in ``O(log Δ)`` iterations regardless of
  the weight magnitudes;
* the classic uniform init pays ``O(log(W n))`` where ``W`` is the weight
  spread — on 9-decade weights it is several times slower;
* the rejected ``min(w,w)/Δ`` variant matches the LOCAL bound (its defect
  only shows in the MPC progress analysis — experiment E9).

The bench sweeps degree × weight spread and asserts the separation.
"""

import math

from benchmarks.conftest import register_table
from repro.analysis.experiments import experiment_centralized_iterations


def test_e5_centralized_iterations(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_centralized_iterations(
            n=2000,
            degrees=(8.0, 32.0, 128.0),
            weight_spreads=(1.0, 5.0, 9.0),
            eps=0.1,
            seed=5,
        ),
        rounds=1,
        iterations=1,
    )
    register_table("E5: Algorithm 1 iterations by initialization (Prop 3.4)", rows)

    eps = 0.1
    for r in rows:
        # Prop 3.4: degree-scaled within log_{1/(1-eps)} Δ + 2.
        bound = math.log(max(r["max_degree"], 2)) / math.log(1 / (1 - eps)) + 2
        assert r["iters_degree_scaled"] <= bound
    # The weight-spread penalty of uniform init: at 9 decades it must pay
    # at least 3x more iterations than degree-scaled.
    wide = [r for r in rows if r["weight_spread_decades"] == 9.0]
    assert wide and all(r["uniform_over_degree_scaled"] >= 3.0 for r in wide)
