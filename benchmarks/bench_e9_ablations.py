"""E9 — ablations of the §3.2 design choices.

Rows:

* the practical default (degree-scaled init, unbiased estimator);
* a mild flat bias and the paper's ``2·15^t`` bias (the latter freezes
  everything at t=0 at laptop scale — covers stay valid, quality degrades);
* doubled per-phase iterations (more compression per phase, more deviation).

Plus the initialization ablation the paper argues in §3.2: the
``min(w/Δ)`` variant weakens per-phase progress (smaller initial duals =>
slower dual growth at low-degree-spread vertices), measured as the edge
count remaining after phase 0 under identical seeds.
"""

from benchmarks.conftest import register_table
from repro.analysis.experiments import experiment_ablations, make_workload
from repro.core.params import MPCParameters
from repro.core.phase_kernel import (
    GlobalState,
    apply_outcome,
    plan_phase,
    simulate_phase_vectorized,
)


def _phase0_survivors(graph, params, init_mode, seed):
    """Edges left after one phase, optionally with max-degree-scaled x0."""
    import numpy as np

    state = GlobalState.initial(graph, graph.weights)
    plan = plan_phase(
        graph, state, params, phase_index=0, partition_seed=seed, threshold_seed=seed + 1
    )
    if init_mode == "max_degree":
        # Replace x0 with the min(w'(u), w'(v))/Δ variant, keeping all else.
        delta = max(int(state.resid_degree.max()), 1)
        wu = state.wprime[graph.edges_u[plan.edges_high]]
        wv = state.wprime[graph.edges_v[plan.edges_high]]
        plan.x0 = np.minimum(wu, wv) / float(delta)
    outcome = simulate_phase_vectorized(plan, params)
    apply_outcome(graph, graph.weights, state, plan, outcome)
    return state.nonfrozen_edge_count(graph)


def test_e9_ablations(benchmark):
    def run():
        rows = experiment_ablations(n=2000, avg_degree=64.0, eps=0.1, trials=3, seed=9)
        g = make_workload("gnp", 2000, 64.0, "adversarial", 99)
        params = MPCParameters(eps=0.1)
        paper_init = _phase0_survivors(g, params, "degree_scaled", 100)
        delta_init = _phase0_survivors(g, params, "max_degree", 100)
        rows.append(
            {
                "variant": "init ablation: survivors after phase 0 "
                f"(w/d: {paper_init}, w/Δ: {delta_init})",
                "phases_mean": float("nan"),
                "rounds_mean": float("nan"),
                "certified_ratio": float("nan"),
                "certified_ratio_pruned": float("nan"),
            }
        )
        return rows, paper_init, delta_init

    rows, paper_init, delta_init = benchmark.pedantic(run, rounds=1, iterations=1)
    register_table("E9: design-choice ablations (§3.2)", rows)

    # The paper's init must make at least as much per-phase progress as the
    # rejected min(w/Δ) variant on heterogeneous-degree input.
    assert paper_init <= delta_init

    by_name = {r["variant"]: r for r in rows}
    default = by_name["paper_practical (unbiased)"]
    paper_bias = by_name["bias paper (2, 15^t)"]
    # The paper's bias at laptop scale freezes everything immediately: it
    # must cost cover quality relative to the unbiased default.
    assert paper_bias["certified_ratio"] >= default["certified_ratio"]
