"""Service throughput: sequential loop vs pooled batch vs warm-cache replay.

Not a paper claim — the engineering numbers behind the batch service
(DESIGN: the algorithm is embarrassingly parallel *across* instances, so a
process pool should scale near-linearly with cores, and a warm cache should
make repeated traffic nearly free).  On a 32-instance manifest the bench
reports:

* ``sequential`` — the plain one-at-a-time loop (the pre-service baseline);
* ``pooled``     — :class:`~repro.service.batch.BatchSolver` across a warm
  process pool (pool start-up excluded: a service keeps its pool alive,
  so steady-state throughput is the number that matters);
* ``replay``     — the same manifest against the warm cache.

Asserts: pooled and replayed answers are identical to sequential ones;
replay does zero solving (every request is a cache hit); and the pooled
batch beats the loop by a core-scaled factor — ≥ 2× on hosts with 4+ cpus,
≥ 1.2× on 2–3 cpus (shared CI runners can't do better than the cores they
have).  On single-core hosts the speedup assertion is skipped (there is
nothing to shard onto) and only the correctness/caching claims hold.
"""

import os
import time

from benchmarks.conftest import register_table
from repro.graphs.generators import gnp_average_degree
from repro.graphs.weights import uniform_weights
from repro.service.batch import BatchSolver, solve_sequential
from repro.service.schema import SolveRequest

NUM_INSTANCES = 32
_CPUS = os.cpu_count() or 1


def _manifest(k=NUM_INSTANCES):
    """k independent mid-size instances (~40k edges each)."""
    reqs = []
    for i in range(k):
        g = gnp_average_degree(4000, 20.0, seed=1000 + i)
        g = g.with_weights(uniform_weights(g.n, 1.0, 10.0, seed=2000 + i))
        reqs.append(SolveRequest(g, eps=0.1, seed=17, request_id=f"inst-{i}"))
    return reqs


def test_service_throughput(benchmark):
    requests = _manifest()
    solver = BatchSolver(cache=NUM_INSTANCES + 8)

    t0 = time.perf_counter()
    seq = solve_sequential(requests)
    t_seq = time.perf_counter() - t0

    # Warm instances, distinct from the manifest, to spin the pool up
    # (worker fork + numpy import) before the timed run.
    warmup = [
        SolveRequest(gnp_average_degree(50, 4.0, seed=i), request_id=f"warm-{i}")
        for i in range(2)
    ]
    with solver:
        solver.solve_batch(warmup)
        t0 = time.perf_counter()
        pooled = solver.solve_batch(requests)
        t_pool = time.perf_counter() - t0

        t0 = time.perf_counter()
        replay = solver.solve_batch(requests)
        t_replay = time.perf_counter() - t0

    # pytest-benchmark's timed section: the steady-state pooled+cached path
    # (pool already warm, cache cleared each round so real solving happens).
    def warm_batch():
        solver2.cache.clear()
        return solver2.solve_batch(requests)

    with BatchSolver(cache=NUM_INSTANCES + 8) as solver2:
        solver2.solve_batch(requests[:2])  # spin the pool up
        benchmark.pedantic(warm_batch, rounds=1, iterations=1)

    rows = [
        {"mode": "sequential", "seconds": round(t_seq, 3), "speedup": 1.0},
        {"mode": "pooled", "seconds": round(t_pool, 3),
         "speedup": round(t_seq / t_pool, 2) if t_pool else float("inf")},
        {"mode": "replay (warm cache)", "seconds": round(t_replay, 3),
         "speedup": round(t_seq / t_replay, 2) if t_replay else float("inf")},
    ]
    register_table(
        f"Service throughput: {NUM_INSTANCES} instances, {_CPUS} cpus", rows
    )

    # correctness: all three paths agree bit-for-bit on every instance
    assert all(r.ok for r in seq + pooled + replay)
    for s, p, c in zip(seq, pooled, replay):
        assert p.result.cover_weight == s.result.cover_weight
        assert c.result.cover_weight == s.result.cover_weight
        assert (p.result.in_cover == s.result.in_cover).all()
        assert (c.result.in_cover == s.result.in_cover).all()

    # caching: the replay never re-solved anything
    assert all(r.cache_hit for r in replay)
    assert all(r.elapsed == 0.0 for r in replay)
    assert t_replay < t_seq / 10, "warm-cache replay should be near-free"

    # scaling: sharding must pay for itself once there are cores to shard
    # onto; a 2-core box cannot exceed 2x, so the bar scales with the host.
    if _CPUS >= 2:
        required = 2.0 if _CPUS >= 4 else 1.2
        assert t_pool * required <= t_seq, (
            f"pooled batch {t_pool:.2f}s not {required}x faster than "
            f"sequential {t_seq:.2f}s on {_CPUS} cpus"
        )
