"""Dynamic streams: incremental repair vs re-solve-every-batch.

Not a paper claim — the engineering case for the dynamic subsystem
(DESIGN: local repair keeps the cover valid for pennies, so full MPC
re-solves should be *rare* — triggered by certificate drift or a periodic
refresh — without giving up final quality).  For each churn model
(uniform, hub, sliding_window) the bench replays the same update stream
two ways:

* ``incremental`` — :func:`repro.dynamic.run_stream` with the default
  drift-bounded policy (tight 2% drift + refresh every 8 batches);
* ``every_batch`` — the degenerate policy that re-solves after every
  batch (the "no incremental maintenance" baseline).

Asserts: both final covers verify; the incremental path issues *fewer*
full re-solves than the baseline; and its final cover weight matches the
baseline's within 1%.  Results are emitted as JSON — written to the path
in ``$BENCH_DYNAMIC_STREAM_JSON`` when set (the CI artifact), or to the
``--out`` path when run as a script::

    python benchmarks/bench_dynamic_stream.py --out bench_dynamic_stream.json
"""

import json
import os
import time

from benchmarks.conftest import register_table
from repro.dynamic import ResolvePolicy, run_stream
from repro.graphs.generators import gnp_average_degree
from repro.graphs.streams import CHURN_MODELS, make_update_stream
from repro.graphs.weights import uniform_weights

N = 2000
DEGREE = 12.0
NUM_UPDATES = 1500
BATCH_SIZE = 50
EPS = 0.1
SEED = 9

INCREMENTAL_POLICY = ResolvePolicy(max_drift=0.02, max_batches_between=8)
EVERY_BATCH_POLICY = ResolvePolicy(every_batch=True)

#: Required final-quality agreement between the two strategies.
QUALITY_TOLERANCE = 0.01


def _workload():
    g = gnp_average_degree(N, DEGREE, seed=5)
    return g.with_weights(uniform_weights(g.n, 1.0, 10.0, seed=6))


def _run(graph, updates, policy):
    start = time.perf_counter()
    summary = run_stream(
        graph, updates, batch_size=BATCH_SIZE, policy=policy, eps=EPS, seed=SEED
    )
    elapsed = time.perf_counter() - start
    return summary, elapsed


def run_bench():
    """Replay every churn model both ways; returns (rows, results-dict)."""
    graph = _workload()
    rows = []
    results = {
        "config": {
            "n": N,
            "degree": DEGREE,
            "num_updates": NUM_UPDATES,
            "batch_size": BATCH_SIZE,
            "eps": EPS,
            "max_drift": INCREMENTAL_POLICY.max_drift,
            "max_batches_between": INCREMENTAL_POLICY.max_batches_between,
        },
        "models": {},
    }
    for model in CHURN_MODELS:
        updates = make_update_stream(model, graph, NUM_UPDATES, seed=7)
        inc, t_inc = _run(graph, updates, INCREMENTAL_POLICY)
        base, t_base = _run(graph, updates, EVERY_BATCH_POLICY)
        assert inc.final_is_cover and base.final_is_cover
        delta = inc.final_cover_weight / base.final_cover_weight - 1.0
        results["models"][model] = {
            "incremental": inc.summary(),
            "every_batch": base.summary(),
            "quality_delta": delta,
            "incremental_seconds": round(t_inc, 3),
            "every_batch_seconds": round(t_base, 3),
        }
        rows.append(
            {
                "churn": model,
                "resolves (inc)": inc.num_resolves,
                "resolves (base)": base.num_resolves,
                "updates/s (inc)": round(NUM_UPDATES / t_inc),
                "updates/s (base)": round(NUM_UPDATES / t_base),
                "quality delta": f"{delta:+.3%}",
                "final ratio (inc)": round(inc.final_certified_ratio, 3),
            }
        )
    return rows, results


def _check(results) -> None:
    for model, r in results["models"].items():
        inc, base = r["incremental"], r["every_batch"]
        assert inc["num_resolves"] < base["num_resolves"], (
            f"{model}: incremental used {inc['num_resolves']} re-solves, "
            f"baseline {base['num_resolves']} — no savings"
        )
        assert abs(r["quality_delta"]) <= QUALITY_TOLERANCE, (
            f"{model}: final quality delta {r['quality_delta']:+.3%} "
            f"exceeds {QUALITY_TOLERANCE:.0%}"
        )


def test_dynamic_stream_throughput(benchmark):
    rows, results = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    register_table(
        f"Dynamic streams: {NUM_UPDATES} updates, batches of {BATCH_SIZE}", rows
    )
    _check(results)
    out = os.environ.get("BENCH_DYNAMIC_STREAM_JSON")
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(results, fh, indent=2)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="bench_dynamic_stream.json",
                        help="where to write the results JSON")
    args = parser.parse_args(argv)
    rows, results = run_bench()
    _check(results)
    from repro.analysis.tables import render_table

    print(render_table(rows, title="Dynamic streams: incremental vs every-batch"))
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2)
    print(f"results written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
