"""E1 — Theorem 1.1 / Theorem 4.5: O(log log d̄) MPC rounds.

Claim: the number of compressed phases grows like ``log log d̄`` — doubling
the *logarithm* of the degree adds O(1) phases.  The bench sweeps an
(n, d̄) grid, reports phases and rounds, and asserts (a) phase counts stay
tiny (≤ 8) across a 16x degree range, and (b) the growth from d=16 to d=256
is at most 3 phases — the loglog signature (a log-round algorithm would add
~log(256/16) ≈ 4+ phases per step and ~25 overall).
"""

from benchmarks.conftest import register_table
from repro.analysis.experiments import experiment_round_complexity
from repro.core.asymptotics import predict

_COLUMNS = [
    "n",
    "avg_degree",
    "loglog_d",
    "phases_mean",
    "phases_max",
    "rounds_mean",
    "phases_per_loglog",
    "phase0_decay_exp",
]


def test_e1_round_complexity(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_round_complexity(
            ns=(2000, 4000, 8000),
            degrees=(16.0, 64.0, 256.0),
            eps=0.1,
            trials=3,
            seed=1,
        ),
        rounds=1,
        iterations=1,
    )
    register_table("E1: phases/rounds vs log log d̄ (Theorem 1.1)", rows, columns=_COLUMNS)

    assert all(r["phases_max"] <= 8 for r in rows)
    for n in {r["n"] for r in rows}:
        sub = sorted((r for r in rows if r["n"] == n), key=lambda r: r["avg_degree"])
        if len(sub) >= 2:
            growth = sub[-1]["phases_mean"] - sub[0]["phases_mean"]
            assert growth <= 3.0, f"phase growth {growth} too steep for loglog at n={n}"
    # The loglog mechanism: each phase maps d̄ -> d̄^c with c bounded below 1.
    decays = [r["phase0_decay_exp"] for r in rows if r["phase0_decay_exp"] == r["phase0_decay_exp"]]
    assert decays and max(decays) < 0.9

    # Companion table: the paper's own recursion (Theorem 4.5) evaluated
    # symbolically at the scales where its constants are meaningful — the
    # loglog growth is the *additive* phase increment per 10x of log d,
    # against the multiplicative growth of the pre-compression baseline.
    asym = [predict(1e30, log10_d).as_dict() for log10_d in (3e3, 3e4, 3e5)]
    register_table(
        "E1b: Theorem 4.5 recursion at asymptotic scale (n = 10^1e30)", asym
    )
    increments = [
        asym[i + 1]["paper_phases (recursion)"] - asym[i]["paper_phases (recursion)"]
        for i in range(len(asym) - 1)
    ]
    assert all(inc > 0 for inc in increments)
    assert abs(increments[1] - increments[0]) <= 0.25 * increments[0]
