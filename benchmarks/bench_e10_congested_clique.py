"""E10 — §1.3: the congested-clique implication via BDH18.

Claim: the near-linear MPC algorithm translates to the congested clique
with constant-factor round overhead, giving O(log log d̄) CC rounds for
(2+ε)-approximate MWVC.  The bench reports the measured translation factor
(``LENZEN_ROUNDS · ⌈S/n⌉``, a constant independent of n) and the resulting
CC round counts over an n sweep.
"""

from benchmarks.conftest import register_table
from repro.analysis.experiments import experiment_congested_clique


def test_e10_congested_clique(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_congested_clique(
            ns=(500, 1000, 2000), avg_degree=24.0, eps=0.1, seed=10
        ),
        rounds=1,
        iterations=1,
    )
    register_table("E10: congested-clique translation (BDH18 adapter)", rows)

    factors = {r["cc_per_mpc"] for r in rows}
    assert len(factors) == 1, "translation factor must be constant in n"
    for r in rows:
        assert r["cc_rounds"] == r["mpc_rounds"] * r["cc_per_mpc"]
