"""Benchmark-suite plumbing.

Every bench computes one experiment's rows (DESIGN.md §5), asserts the
paper's shape claim on them, registers the rendered table via
:func:`register_table`, and times the computation with
``benchmark.pedantic(..., rounds=1)`` (experiments are full workloads, not
microkernels — one timed execution is the meaningful number; the throughput
bench uses normal multi-round timing for the actual kernels).

All registered tables are printed in the terminal summary, so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures the
reproduced tables alongside pytest-benchmark's timing table.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.tables import render_table

_TABLES: List[str] = []


def register_table(title: str, rows, columns: Optional[Sequence[str]] = None) -> None:
    """Queue a rendered experiment table for the terminal summary."""
    _TABLES.append(render_table(rows, title=title, columns=columns))


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    terminalreporter.section("Reproduced experiment tables (paper-claim vs measured)")
    for table in _TABLES:
        terminalreporter.write_line("")
        for line in table.splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
