"""E2 — Theorem 4.7 / Proposition 3.3: w(C) ≤ (2 + 30ε)·OPT.

Claim: the cover weight stays within ``2 + 30ε`` of the optimum, for every
ε and weight model.  Measured three ways per configuration:

* against exact OPT (branch & bound) on small instances,
* against the LP relaxation (≤ OPT) on medium instances,
* against the run's own dual certificate (sound at every scale).

The bench asserts the bound for the first two (real ratios) — certified
ratios are looser by construction (the certificate divides by the dual
value, which sits below LP) and are reported for reference.
"""

from benchmarks.conftest import register_table
from repro.analysis.experiments import experiment_approximation


def test_e2_approximation(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_approximation(
            eps_values=(0.05, 0.1, 0.2),
            weight_models=("uniform", "exponential", "adversarial"),
            n_small=40,
            n_medium=1200,
            trials=3,
            seed=2,
        ),
        rounds=1,
        iterations=1,
    )
    register_table("E2: approximation ratios (Theorem 4.7 bound = 2 + 30ε)", rows)

    for r in rows:
        assert r["within_bound"], f"ratio exceeded 2+30ε for {r}"
        assert r["ratio_vs_exact"] >= 1.0 - 1e-9
        assert r["ratio_vs_lp"] >= 1.0 - 1e-9
