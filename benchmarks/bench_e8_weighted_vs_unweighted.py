"""E8 — the motivation: unweighted (GGK+18-style) covers on weighted inputs.

Claim (introduction): the pre-existing O(log log n) MPC algorithm handles
only cardinality vertex cover; on weighted instances a cardinality-driven
cover can be arbitrarily more expensive.  The bench compares the true cost
of the weight-blind cover against the weighted algorithm's on three weight
models, plus the adversarial heavy-hub star where the gap is unbounded.
"""

import numpy as np

from benchmarks.conftest import register_table
from repro.analysis.experiments import experiment_weighted_vs_unweighted
from repro.baselines.ggk_unweighted import unweighted_mpc_vertex_cover
from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.graphs.generators import star


def test_e8_weighted_vs_unweighted(benchmark):
    def run():
        rows = experiment_weighted_vs_unweighted(
            n=2000,
            avg_degree=24.0,
            weight_models=("uniform", "adversarial", "degree_correlated"),
            eps=0.1,
            trials=3,
            seed=8,
        )
        # The unbounded-gap construction: heavy hub, light leaves.
        g = star(400)
        w = np.ones(400)
        w[0] = 10_000.0
        g = g.with_weights(w)
        ggk = unweighted_mpc_vertex_cover(g, eps=0.05, seed=9)
        ours = minimum_weight_vertex_cover(g, eps=0.05, seed=9)
        rows.append(
            {
                "weights": "heavy-hub star",
                "unweighted_over_weighted_mean": ggk.true_weight / ours.cover_weight,
                "unweighted_over_weighted_max": ggk.true_weight / ours.cover_weight,
                "weighted_wins": True,
            }
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    register_table("E8: cost of ignoring weights (GGK-style baseline)", rows)

    hub = [r for r in rows if r["weights"] == "heavy-hub star"]
    assert hub and hub[0]["unweighted_over_weighted_mean"] > 10.0
    adv = [r for r in rows if r["weights"] == "adversarial"]
    assert adv and adv[0]["unweighted_over_weighted_mean"] > 1.1
