"""Durability overhead: checkpointed streams vs plain streams.

Not a paper claim — the engineering case for the durability layer
(DESIGN: the WAL commit + periodic snapshots must cost little enough that
durable-by-default is reasonable, and checkpointing must not *change* the
result).  The same churn stream is replayed three ways:

* ``plain`` — :func:`repro.dynamic.run_stream` with no checkpointing;
* ``durable`` — WAL + snapshots with ``fsync`` (the crash-consistent
  default of ``repro stream --checkpoint-dir``);
* ``durable-nofsync`` — same, buffered writes only (``--no-fsync``).

Asserts: all three final covers are *identical* (durability is
observationally invisible), and restoring the final snapshot reproduces
the maintained state.  Results are emitted as JSON — written to the path
in ``$BENCH_CHECKPOINT_JSON`` when set (the CI artifact), or to the
``--out`` path when run as a script::

    python benchmarks/bench_checkpoint.py --out bench_checkpoint.json
"""

import json
import os
import shutil
import tempfile
import time

import numpy as np

from benchmarks.conftest import register_table
from repro.dynamic import CheckpointConfig, ResolvePolicy, run_stream
from repro.dynamic.checkpoint import load_snapshot
from repro.graphs.generators import gnp_average_degree
from repro.graphs.streams import make_update_stream
from repro.graphs.weights import uniform_weights

N = 2000
DEGREE = 12.0
NUM_UPDATES = 1200
BATCH_SIZE = 50
SNAPSHOT_EVERY = 4
EPS = 0.1
SEED = 9

POLICY = ResolvePolicy(max_drift=0.1)


def _workload():
    g = gnp_average_degree(N, DEGREE, seed=5)
    return g.with_weights(uniform_weights(g.n, 1.0, 10.0, seed=6))


def _run(graph, updates, checkpoint=None):
    start = time.perf_counter()
    summary = run_stream(
        graph,
        updates,
        batch_size=BATCH_SIZE,
        policy=POLICY,
        eps=EPS,
        seed=SEED,
        checkpoint=checkpoint,
    )
    return summary, time.perf_counter() - start


def run_bench():
    """Replay the stream plain and durable; returns (rows, results-dict)."""
    graph = _workload()
    updates = make_update_stream("uniform", graph, NUM_UPDATES, seed=7)
    results = {
        "config": {
            "n": N,
            "degree": DEGREE,
            "num_updates": NUM_UPDATES,
            "batch_size": BATCH_SIZE,
            "snapshot_every": SNAPSHOT_EVERY,
        },
        "modes": {},
    }
    rows = []
    covers = {}
    snapshot_bytes = 0
    wal_bytes = 0
    for mode, fsync in (("plain", None), ("durable", True), ("durable-nofsync", False)):
        directory = None
        checkpoint = None
        if fsync is not None:
            directory = tempfile.mkdtemp(prefix=f"bench-ckpt-{mode}-")
            checkpoint = CheckpointConfig(
                directory=directory,
                snapshot_every=SNAPSHOT_EVERY,
                fsync=fsync,
            )
        try:
            summary, elapsed = _run(graph, updates, checkpoint)
            assert summary.final_is_cover
            covers[mode] = summary.final_cover
            if checkpoint is not None:
                snapshot_bytes = os.path.getsize(checkpoint.snapshot_path)
                wal_bytes = os.path.getsize(checkpoint.wal_path)
                restored = load_snapshot(checkpoint.snapshot_path).maintainer
                assert np.array_equal(restored.cover, summary.final_cover), (
                    "final snapshot does not restore the maintained cover"
                )
            results["modes"][mode] = {
                "summary": summary.summary(),
                "seconds": round(elapsed, 3),
                "updates_per_second": round(NUM_UPDATES / elapsed),
            }
            rows.append(
                {
                    "mode": mode,
                    "updates/s": round(NUM_UPDATES / elapsed),
                    "re-solves": summary.num_resolves,
                    "snapshot KiB": round(snapshot_bytes / 1024, 1) if checkpoint else "-",
                    "wal KiB": round(wal_bytes / 1024, 1) if checkpoint else "-",
                }
            )
        finally:
            if directory is not None:
                shutil.rmtree(directory, ignore_errors=True)
    results["durability_overhead"] = (
        results["modes"]["durable"]["seconds"]
        / results["modes"]["plain"]["seconds"]
    )
    return rows, results, covers


def _check(results, covers) -> None:
    for mode in ("durable", "durable-nofsync"):
        assert np.array_equal(covers["plain"], covers[mode]), (
            f"{mode}: checkpointing changed the final cover"
        )
        assert (
            results["modes"][mode]["summary"]["final_certified_ratio"]
            == results["modes"]["plain"]["summary"]["final_certified_ratio"]
        ), f"{mode}: checkpointing changed the certificate"


def test_checkpoint_overhead(benchmark):
    rows, results, covers = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    register_table(
        f"Durability overhead: {NUM_UPDATES} updates, snapshot every "
        f"{SNAPSHOT_EVERY} batches",
        rows,
    )
    _check(results, covers)
    out = os.environ.get("BENCH_CHECKPOINT_JSON")
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(results, fh, indent=2)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="bench_checkpoint.json",
                        help="where to write the results JSON")
    args = parser.parse_args(argv)
    rows, results, covers = run_bench()
    _check(results, covers)
    from repro.analysis.tables import render_table

    print(render_table(rows, title="Durability overhead: plain vs checkpointed"))
    print(f"durable/plain wall-clock ratio: {results['durability_overhead']:.2f}x")
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2)
    print(f"results written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
