"""E7 — the intro claim: previous best O(log n) rounds vs our O(log log d̄).

Claim: before this paper, weighted vertex cover in near-linear MPC took
Θ(log Δ / ε) rounds (one LOCAL iteration per round); Algorithm 2 compresses
them into O(log log d̄) phases.  Two measured signatures:

* the phase count sits far below the baseline's round count everywhere;
* solution quality is unchanged (weight ratio ≈ 1).

The absolute-round crossover is ε-dependent (each compressed phase spends
~11 rounds on collectives), so the bench reports both ε = 0.1 and ε = 0.05;
at 0.05 the compressed algorithm must win outright.
"""

from benchmarks.conftest import register_table
from repro.analysis.experiments import experiment_vs_local_baseline


def test_e7_vs_local_baseline(benchmark):
    def run():
        rows = []
        for eps in (0.1, 0.05):
            for r in experiment_vs_local_baseline(
                ns=(1000, 4000, 16000), avg_degree=32.0, eps=eps, seed=7
            ):
                r = dict(r)
                r["eps"] = eps
                rows.append(r)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    register_table(
        "E7: Algorithm 2 vs LOCAL-per-round baseline (intro claim)",
        rows,
        columns=[
            "eps",
            "n",
            "avg_degree",
            "ours_phases",
            "ours_rounds",
            "baseline_rounds",
            "weight_ratio",
        ],
    )

    for r in rows:
        assert r["ours_phases"] * 4 < r["baseline_rounds"]
        assert 0.5 < r["weight_ratio"] < 1.5
    tight = [r for r in rows if r["eps"] == 0.05]
    assert all(r["ours_rounds"] < r["baseline_rounds"] for r in tight)
