"""Repair-kernel microbenchmark: vectorized vs reference hot path.

Not a paper claim — the perf gate of the kernel-vectorization PR
(DESIGN: the streaming subsystem's pricing-repair and greedy-prune
kernels, plus the CSR-delta adjacency under them, must be measurably
faster than the original object-at-a-time implementations while staying
*bit-identical*).  The bench replays one seeded 100k-update uniform-churn
stream through two :class:`~repro.dynamic.IncrementalCoverMaintainer`
instances — ``kernels="vectorized"`` (the production hot path) and
``kernels="reference"`` (the original code, kept as the executable spec)
— with per-kernel profiling on, and asserts:

* the final covers, duals, and dual totals agree bit for bit;
* the vectorized *kernel* time (repair + prune) is at least
  :data:`MIN_KERNEL_SPEEDUP`× faster than the reference's.

End-to-end throughput (which also contains the sequential event-apply
loop common to both modes) is reported but not gated.  Results are
emitted as JSON — written to ``$BENCH_REPAIR_JSON`` when set (the CI
perf-smoke artifact; the committed ``BENCH_repair.json`` baseline is this
file's output), or to ``--out`` when run as a script::

    python benchmarks/bench_repair_kernels.py --out BENCH_repair.json
"""

import json
import os
import sys
import time

if __package__ in (None, ""):  # `python benchmarks/bench_repair_kernels.py`
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.conftest import register_table
from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.dynamic import DynamicGraph, IncrementalCoverMaintainer
from repro.graphs.generators import gnp_average_degree
from repro.graphs.streams import make_update_stream
from repro.graphs.weights import uniform_weights

N = 10_000
DEGREE = 10.0
NUM_UPDATES = int(os.environ.get("BENCH_REPAIR_UPDATES", 100_000))
BATCH_SIZE = 1000
EPS = 0.1
SOLVE_SEED = 2
STREAM_SEED = 7

#: Required kernel-time (repair + prune) speedup of vectorized over
#: reference.  The committed BENCH_repair.json baseline measures ~6.9x
#: on the 100k-update uniform-churn stream; the gate leaves headroom for
#: machine-to-machine variance (4-7x observed across runs).
MIN_KERNEL_SPEEDUP = 3.0


def _workload():
    g = gnp_average_degree(N, DEGREE, seed=5)
    return g.with_weights(uniform_weights(g.n, 1.0, 10.0, seed=6))


def _replay(graph, updates, result, kernels):
    """Adopt ``result`` and replay the full stream; returns measurements."""
    dyn = DynamicGraph(graph)
    maintainer = IncrementalCoverMaintainer(dyn, kernels=kernels, profile=True)
    maintainer.adopt(result)
    start = time.perf_counter()
    for i in range(0, len(updates), BATCH_SIZE):
        maintainer.apply_batch(updates[i : i + BATCH_SIZE])
    elapsed = time.perf_counter() - start
    profile = maintainer.kernel_profile
    return {
        "elapsed_s": elapsed,
        "updates_per_s": len(updates) / elapsed,
        "kernel_s": profile["repair_s"] + profile["prune_s"],
        "profile": {k: round(v, 6) for k, v in profile.items()},
        "final": (
            maintainer.cover,
            maintainer.edge_duals(),
            maintainer.dual_value,
            maintainer.verify(),
        ),
    }


def run_bench():
    """Replay the stream through both kernel sets; returns (rows, results)."""
    graph = _workload()
    updates = make_update_stream("uniform", graph, NUM_UPDATES, seed=STREAM_SEED)
    result = minimum_weight_vertex_cover(graph, eps=EPS, seed=SOLVE_SEED)

    runs = {
        kernels: _replay(graph, updates, result, kernels)
        for kernels in ("reference", "vectorized")
    }
    ref, vec = runs["reference"], runs["vectorized"]

    ref_cover, ref_duals, ref_dual_value, ref_valid = ref.pop("final")
    vec_cover, vec_duals, vec_dual_value, vec_valid = vec.pop("final")
    assert ref_valid and vec_valid, "a maintained cover failed verification"
    assert (ref_cover == vec_cover).all(), "covers diverged between kernel sets"
    assert ref_duals == vec_duals, "duals diverged between kernel sets"
    assert ref_dual_value == vec_dual_value, "dual totals diverged"

    results = {
        "config": {
            "n": N,
            "degree": DEGREE,
            "num_updates": NUM_UPDATES,
            "batch_size": BATCH_SIZE,
            "churn": "uniform",
            "eps": EPS,
            "min_kernel_speedup": MIN_KERNEL_SPEEDUP,
        },
        "reference": {k: round(v, 6) if isinstance(v, float) else v for k, v in ref.items()},
        "vectorized": {k: round(v, 6) if isinstance(v, float) else v for k, v in vec.items()},
        "kernel_speedup": ref["kernel_s"] / vec["kernel_s"],
        "stream_speedup": ref["elapsed_s"] / vec["elapsed_s"],
        "bit_identical": True,
    }
    rows = [
        {
            "kernels": kernels,
            "updates/s": round(runs[kernels]["updates_per_s"]),
            "kernel s": round(runs[kernels]["kernel_s"], 3),
            "repair s": runs[kernels]["profile"]["repair_s"],
            "prune s": runs[kernels]["profile"]["prune_s"],
            "adjacency s": runs[kernels]["profile"]["adjacency_s"],
        }
        for kernels in ("reference", "vectorized")
    ]
    rows.append(
        {
            "kernels": "speedup",
            "updates/s": f"{results['stream_speedup']:.2f}x",
            "kernel s": f"{results['kernel_speedup']:.2f}x",
            "repair s": "",
            "prune s": "",
            "adjacency s": "",
        }
    )
    return rows, results


def _check(results) -> None:
    speedup = results["kernel_speedup"]
    assert speedup >= MIN_KERNEL_SPEEDUP, (
        f"vectorized kernels are only {speedup:.2f}x faster than the "
        f"reference (need >= {MIN_KERNEL_SPEEDUP}x)"
    )


def test_repair_kernel_speedup(benchmark):
    rows, results = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    register_table(
        f"Repair kernels: {NUM_UPDATES} uniform-churn updates, "
        f"batches of {BATCH_SIZE}",
        rows,
    )
    _check(results)
    out = os.environ.get("BENCH_REPAIR_JSON")
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(results, fh, indent=2)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_repair.json",
                        help="where to write the results JSON")
    args = parser.parse_args(argv)
    rows, results = run_bench()
    _check(results)
    from repro.analysis.tables import render_table

    print(render_table(rows, title="Repair kernels: vectorized vs reference"))
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2)
    print(f"results written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
