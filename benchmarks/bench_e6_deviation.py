"""E6 — Lemma 4.6: coupled centralized-vs-MPC estimator deviation.

Claim (asymptotic): ``|y_{v,t} − ỹ^MPC_{v,t}| ≤ 6ε·w'(v)`` for all v, t,
w.h.p.  The constant requires ``4·m^{-0.1} ≤ ε`` — machine counts far
beyond feasible graphs — so the laptop-scale reproduction target is the
*decay*: the deviation falls as the degree grows (each vertex's local
sample has ≈ √d̄ edges, so the relative error scales like ``d̄^{-1/4}``).

The bench couples phase-0 runs (same seeds, thresholds, initial duals) over
a degree sweep and asserts (a) the bulk (median) deviation is already below
6ε at every degree, and (b) the p99 deviation decreases monotonically with
the degree and lands under 6ε at the densest point.
"""

from benchmarks.conftest import register_table
from repro.analysis.experiments import experiment_deviation


def test_e6_deviation(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_deviation(
            n=3000, degrees=(32.0, 128.0, 512.0), eps=0.1, trials=3, seed=6
        ),
        rounds=1,
        iterations=1,
    )
    register_table("E6: coupled-run estimator deviation (Lemma 4.6, bound 6ε)", rows)

    bound = rows[0]["lemma_bound_6eps"]
    for r in rows:
        assert r["median_dev"] <= bound, f"bulk deviation above 6ε: {r}"
    p99s = [r["p99_dev"] for r in sorted(rows, key=lambda r: r["avg_degree"])]
    assert all(a >= b for a, b in zip(p99s, p99s[1:])), "p99 deviation must decay with d̄"
    assert p99s[-1] <= bound, "p99 deviation should be within 6ε at the densest point"
