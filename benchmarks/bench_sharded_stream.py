"""Sharded streams: update throughput vs shard count, cut-edge fraction.

Not a paper claim — the engineering case for the sharded pipeline
(DESIGN: the paper's MPC model is multi-machine, and the primal-dual
repair rule is edge-local, so the vertex space partitions and repairs
shard-parallel with only cut-edge coordination).  The bench replays one
hub-churn stream (the stress case: churn concentrates on high-degree
vertices, so repair/prune neighborhoods are fat) through:

* the monolithic ``run_stream`` engine (the reference);
* ``run_sharded_stream`` with 1, 2, 4 shards, one worker process per
  shard — measuring end-to-end update throughput and the
  ingest/repair/re-solve wall-clock split.

It also reports the cut-edge fraction of each partition scheme on the
workload graph — the coordination cost driver: every cut edge is
replicated on two shards and its repairs/prunes serialize through the
coordinator.

Asserts: every run's final cover verifies and **equals the monolithic
cover bit for bit** (the differential-equivalence contract); and — only
on machines with enough cores for the parallelism to exist
(``os.cpu_count() >= 4``) — that the best sharded throughput beats one
shard.  Results are emitted as JSON — written to the path in
``$BENCH_SHARDED_STREAM_JSON`` when set (the CI artifact), or to the
``--out`` path when run as a script::

    python benchmarks/bench_sharded_stream.py --out bench_sharded_stream.json
"""

import json
import os
import time

import numpy as np

from benchmarks.conftest import register_table
from repro.dynamic import ResolvePolicy, run_stream
from repro.dynamic.sharded import run_sharded_stream
from repro.graphs.streams import make_update_stream
from repro.graphs.weights import make_weights
from repro.mpc.partition import cut_edge_fraction, make_partition
from repro.service.manifest import generate_graph

N = 20_000
DEGREE = 8
NUM_UPDATES = 50_000
BATCH_SIZE = 500
EPS = 0.1
SEED = 9
SHARD_COUNTS = (1, 2, 4)
PARTITION = "hash"

#: Keep the run repair-only: the bench measures the incremental path's
#: scaling, not solver time (re-solves go through the same shared service
#: either way).
POLICY = ResolvePolicy(max_drift=1e9, resolve_unbounded=False)


def _workload():
    g = generate_graph("power_law", n=N, degree=DEGREE, seed=5)
    return g.with_weights(make_weights("uniform", g, seed=6))


def run_bench():
    """Replay one hub-churn stream at every shard count; (rows, results)."""
    graph = _workload()
    updates = make_update_stream("hub", graph, NUM_UPDATES, seed=7)
    results = {
        "config": {
            "n": N,
            "degree": DEGREE,
            "m": graph.m,
            "num_updates": NUM_UPDATES,
            "batch_size": BATCH_SIZE,
            "eps": EPS,
            "partition": PARTITION,
            "cpu_count": os.cpu_count(),
        },
        "cut_fractions": {},
        "runs": {},
    }
    for scheme in ("hash", "range"):
        for shards in SHARD_COUNTS:
            assignment = make_partition(scheme, graph.n, shards)
            results["cut_fractions"][f"{scheme}/{shards}"] = round(
                cut_edge_fraction(graph.edges_u, graph.edges_v, assignment), 4
            )

    start = time.perf_counter()
    reference = run_stream(
        graph, updates, batch_size=BATCH_SIZE, policy=POLICY, eps=EPS, seed=SEED
    )
    mono_elapsed = time.perf_counter() - start
    assert reference.final_is_cover
    results["runs"]["monolithic"] = {
        **reference.summary(),
        "wall_s": round(mono_elapsed, 3),
        "updates_per_s": round(NUM_UPDATES / mono_elapsed),
    }

    rows = [
        {
            "engine": "monolithic",
            "updates/s": round(NUM_UPDATES / mono_elapsed),
            "wall (s)": round(mono_elapsed, 2),
            "cut fraction": "-",
            "cover weight": round(reference.final_cover_weight, 3),
        }
    ]
    for shards in SHARD_COUNTS:
        start = time.perf_counter()
        summary = run_sharded_stream(
            graph,
            updates,
            num_shards=shards,
            partition=PARTITION,
            batch_size=BATCH_SIZE,
            policy=POLICY,
            eps=EPS,
            seed=SEED,
            use_processes=True,
        )
        elapsed = time.perf_counter() - start
        assert summary.final_is_cover
        assert np.array_equal(summary.final_cover, reference.final_cover), (
            f"shards={shards}: final cover differs from the monolithic engine"
        )
        assert (
            summary.final_cover_weight == reference.final_cover_weight
        ), f"shards={shards}: cover weight differs"
        cut = results["cut_fractions"][f"{PARTITION}/{shards}"]
        results["runs"][f"shards={shards}"] = {
            **summary.summary(),
            "wall_s": round(elapsed, 3),
            "updates_per_s": round(NUM_UPDATES / elapsed),
            "cut_fraction": cut,
        }
        rows.append(
            {
                "engine": f"shards={shards}",
                "updates/s": round(NUM_UPDATES / elapsed),
                "wall (s)": round(elapsed, 2),
                "cut fraction": cut,
                "cover weight": round(summary.final_cover_weight, 3),
            }
        )
    return rows, results


def _check(results) -> None:
    runs = results["runs"]
    best_sharded = max(
        runs[f"shards={s}"]["updates_per_s"] for s in SHARD_COUNTS
    )
    one = runs["shards=1"]["updates_per_s"]
    results["scaling"] = {
        "best_sharded_updates_per_s": best_sharded,
        "one_shard_updates_per_s": one,
        "speedup": round(best_sharded / one, 3) if one else None,
    }
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        # Parallelism can only exist when the cores do; single-core boxes
        # (and 2-core CI runners under noisy neighbors) measure but don't
        # gate.
        assert best_sharded > one, (
            f"throughput did not increase with shard count on {cpus} cores: "
            f"best sharded {best_sharded} vs one shard {one} updates/s"
        )


def test_sharded_stream_throughput(benchmark):
    rows, results = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    register_table(
        f"Sharded streams: {NUM_UPDATES} hub-churn updates on "
        f"power_law n={N}",
        rows,
    )
    _check(results)
    out = os.environ.get("BENCH_SHARDED_STREAM_JSON")
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(results, fh, indent=2)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="bench_sharded_stream.json",
                        help="where to write the results JSON")
    args = parser.parse_args(argv)
    rows, results = run_bench()
    _check(results)
    from repro.analysis.tables import render_table

    print(render_table(rows, title="Sharded streams: throughput vs shard count"))
    print(f"cut fractions: {results['cut_fractions']}")
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2)
    print(f"results written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
