"""Kernel throughput: raw speed of the building blocks.

Not a paper claim — engineering numbers for users sizing their runs:

* ``incident_sums`` (the dual-load primitive, two bincounts),
* one compressed phase (plan + simulate + apply),
* a full centralized run,
* a full MPC run,

all on a 200k-edge G(n,p) workload.  These use pytest-benchmark's normal
multi-round timing (they are true microkernels/kernels, unlike the
experiment benches).
"""

import numpy as np
import pytest

from repro.core.centralized import run_centralized
from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.core.params import MPCParameters
from repro.core.phase_kernel import (
    GlobalState,
    apply_outcome,
    plan_phase,
    simulate_phase_vectorized,
)
from repro.graphs.generators import gnp_average_degree
from repro.graphs.weights import uniform_weights


@pytest.fixture(scope="module")
def workload():
    g = gnp_average_degree(10_000, 40.0, seed=77)
    return g.with_weights(uniform_weights(g.n, seed=78))


def test_kernel_incident_sums(benchmark, workload):
    x = np.random.default_rng(0).random(workload.m)
    out = benchmark(workload.incident_sums, x)
    assert out.shape == (workload.n,)


def test_kernel_single_phase(benchmark, workload):
    params = MPCParameters(eps=0.1)

    def one_phase():
        state = GlobalState.initial(workload, workload.weights)
        plan = plan_phase(
            workload, state, params, phase_index=0, partition_seed=1, threshold_seed=2
        )
        outcome = simulate_phase_vectorized(plan, params)
        apply_outcome(workload, workload.weights, state, plan, outcome)
        return state

    state = benchmark(one_phase)
    assert state.frozen.any()


def test_kernel_centralized_run(benchmark, workload):
    res = benchmark(lambda: run_centralized(workload, eps=0.1, seed=3))
    assert workload.is_vertex_cover(res.in_cover)


def test_kernel_full_mpc_run(benchmark, workload):
    res = benchmark(lambda: minimum_weight_vertex_cover(workload, eps=0.1, seed=4))
    assert res.verify(workload)
